// Path-query server: the read-heavy workload of the ROADMAP's north star.
//
// A fleet of agents (delivery drones, packets, players — anything routed
// over a tree) keeps asking "what is the cost/bottleneck/hop count between
// a and b right now?" while the tree itself churns under batched link and
// cut updates. This example serves that workload from one UFO forest:
// updates are applied as batches under a write lock, queries are collected
// into batches and fanned out over the parallel batch-query subsystem
// under a read lock (queries never block each other — they are read-only
// between updates).
//
// Two modes:
//
//	pathserver              # self-driving simulation: interleaved batch
//	                        # links/cuts/queries, prints throughput, exits
//	pathserver -addr :8080  # HTTP server:
//	                        #   GET /path?u=3&v=9     -> sum, max, hops
//	                        #   GET /lca?u=3&v=9&r=0  -> lowest common ancestor
//	                        #   POST /paths           -> JSON [[u,v],...] batch
//	                        #   GET /stats            -> engine phase telemetry
//	                        # churn keeps mutating the tree in the background
//
// /stats exposes the update engine's per-phase telemetry (ufotree
// PhaseStats): the last churn batch's breakdown plus the cumulative
// totals since startup, so operators can see where write-side time goes
// (seeding, conditional deletion, reclustering, ...) without profiling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro"
	"repro/internal/gen"
	"repro/internal/rng"
)

// server owns the forest. The RWMutex encodes the batch-query concurrency
// contract: queries (read-only between updates) share the read side,
// update batches take the write side.
type server struct {
	mu   sync.RWMutex
	f    ufotree.BatchForest
	bq   ufotree.BatchQuerier
	hops func(pairs [][2]int) ([]int, []bool) // UFO-only extension (see newServer)
	n    int
	r    *rng.SplitMix64
	// live tree edges, for generating valid churn batches
	live [][2]int
	// stats accumulates the engine's per-batch phase telemetry over every
	// mutation since startup; lastBatch keeps the most recent *batch*
	// operation's snapshot (the k-cut churn batch — the engine itself
	// resets PhaseStats on every run, so after churn's single-edge
	// relinks the engine's own "last" is a trivial 1-link batch). Both
	// are guarded by mu's write side like the forest.
	stats     ufotree.PhaseStats
	lastBatch ufotree.PhaseStats
}

// recordStats folds the most recent engine run's telemetry into the
// cumulative view and, when it was a real batch (not a 1-edge rewire),
// keeps it as the last-batch snapshot. Callers hold the write lock (or
// are still single-threaded setup).
func (s *server) recordStats() {
	st := s.f.PhaseStats()
	s.stats.Accumulate(st)
	if st.Links+st.Cuts > 1 {
		s.lastBatch = st
	}
}

// newServer builds the initial topology; workers <= 0 selects GOMAXPROCS.
func newServer(n, workers int, seed uint64) *server {
	f := ufotree.NewUFO(n)
	if workers <= 0 {
		f.SetParallel(true)
	} else {
		f.SetWorkers(workers)
	}
	s := &server{f: f, bq: f.(ufotree.BatchQuerier), n: n, r: rng.New(seed)}
	// Hop counts are a UFO-only extension (the facade's BatchQuerier has no
	// BatchPathHops — ternarized structures cannot answer it); resolve the
	// escape hatch once at startup so a future swap to another BatchForest
	// fails loudly here, not mid-request.
	uf, ok := ufotree.UnderlyingUFO(f)
	if !ok {
		log.Fatalf("pathserver needs the UFO structure for hop counts; got %s", f.Name())
	}
	s.hops = uf.BatchPathHops
	topo := gen.WithRandomWeights(gen.PrefAttach(n, seed+1), 100, seed+2)
	edges := make([]ufotree.Edge, len(topo.Edges))
	for i, e := range topo.Edges {
		edges[i] = ufotree.Edge{U: e.U, V: e.V, W: e.W}
		s.live = append(s.live, [2]int{e.U, e.V})
	}
	for lo := 0; lo < len(edges); lo += 10000 {
		hi := lo + 10000
		if hi > len(edges) {
			hi = len(edges)
		}
		f.BatchLink(edges[lo:hi])
		s.recordStats()
	}
	return s
}

// churn applies one batch of k cuts + k links (rewiring random live edges
// to random new endpoints) under the write lock.
func (s *server) churn(k int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var cuts []ufotree.Edge
	for i := 0; i < k && len(s.live) > 0; i++ {
		j := s.r.Intn(len(s.live))
		e := s.live[j]
		s.live[j] = s.live[len(s.live)-1]
		s.live = s.live[:len(s.live)-1]
		cuts = append(cuts, ufotree.Edge{U: e[0], V: e[1]})
	}
	if len(cuts) == 0 {
		return // nothing to rewire; BatchCut(nil) would not run the engine
	}
	s.f.BatchCut(cuts)
	s.recordStats()
	// Reattach each cut-off side somewhere else (or back) with a fresh
	// weight. Links apply one at a time: each rewire's cycle check must see
	// the previous rewires.
	for _, c := range cuts {
		u := c.U
		for try := 0; try < 8; try++ {
			v := s.r.Intn(s.n)
			if v != u && !s.f.Connected(u, v) {
				s.f.Link(u, v, int64(1+s.r.Intn(100)))
				s.recordStats()
				s.live = append(s.live, [2]int{u, v})
				break
			}
		}
	}
}

// answerPaths runs one query batch under the read lock.
func (s *server) answerPaths(pairs [][2]int) (sum []int64, sumOK []bool, mx []int64, hops []int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sum, sumOK = s.bq.BatchPathSum(pairs)
	mx, _ = s.bq.BatchPathMax(pairs)
	hops, _ = s.hops(pairs)
	return sum, sumOK, mx, hops
}

// simulate is the self-driving mode: phases of churn followed by query
// batches, reporting read-side throughput.
func simulate(n, workers, batch, q, rounds int) {
	s := newServer(n, workers, 11)
	fmt.Printf("pathserver simulation: n=%d workers=%d churn-batch=%d query-batch=%d\n",
		n, s.f.Workers(), batch, q)
	var queries int
	var qsecs float64
	for round := 0; round < rounds; round++ {
		s.churn(batch)
		pairs := make([][2]int, q)
		for i := range pairs {
			pairs[i] = [2]int{s.r.Intn(n), s.r.Intn(n)}
		}
		start := time.Now()
		sum, ok, mx, hops := s.answerPaths(pairs)
		qsecs += time.Since(start).Seconds()
		queries += len(pairs)
		// Show one sample answer per round so the output means something.
		for i := range pairs {
			if ok[i] {
				fmt.Printf("  round %d sample: route %d->%d cost=%d bottleneck=%d hops=%d\n",
					round, pairs[i][0], pairs[i][1], sum[i], mx[i], hops[i])
				break
			}
		}
	}
	if qsecs > 0 {
		fmt.Printf("answered %d path queries in %.3fs (%.0f queries/s, 3 aggregates each)\n",
			queries, qsecs, float64(queries)/qsecs)
	}
	// Write-side attribution: where the churn batches actually spent
	// their time, phase by phase (the /stats payload of server mode).
	fmt.Printf("update engine: %d batches, %d links + %d cuts over %d contraction rounds in %v\n",
		s.stats.Batches, s.stats.Links, s.stats.Cuts, s.stats.Levels, s.stats.Total.Round(time.Microsecond))
	for _, ph := range s.stats.Phases {
		if ph.Items == 0 && ph.Time == 0 {
			continue
		}
		share := 0.0
		if s.stats.Total > 0 {
			share = 100 * float64(ph.Time) / float64(s.stats.Total)
		}
		fmt.Printf("  %-13s %8.1f%%  %9v  %9d items\n", ph.Name, share, ph.Time.Round(time.Microsecond), ph.Items)
	}
}

func main() {
	var (
		addr    = flag.String("addr", "", "listen address; empty runs the self-driving simulation")
		n       = flag.Int("n", 50000, "vertices")
		workers = flag.Int("workers", 0, "batch worker count (0 = GOMAXPROCS)")
		batch   = flag.Int("batch", 2000, "churn batch size")
		q       = flag.Int("q", 20000, "queries per batch (simulation mode)")
		rounds  = flag.Int("rounds", 5, "simulation rounds")
	)
	flag.Parse()

	if *addr == "" {
		simulate(*n, *workers, *batch, *q, *rounds)
		return
	}

	s := newServer(*n, *workers, 11)
	go func() {
		for range time.Tick(time.Second) {
			s.churn(*batch)
		}
	}()
	arg := func(req *http.Request, k string) (int, bool) {
		v, err := strconv.Atoi(req.URL.Query().Get(k))
		return v, err == nil && v >= 0 && v < s.n
	}
	http.HandleFunc("/path", func(w http.ResponseWriter, req *http.Request) {
		u, okU := arg(req, "u")
		v, okV := arg(req, "v")
		if !okU || !okV {
			http.Error(w, fmt.Sprintf("u and v must be vertex ids in [0,%d)", s.n), http.StatusBadRequest)
			return
		}
		sum, ok, mx, hops := s.answerPaths([][2]int{{u, v}})
		if !ok[0] {
			http.Error(w, "disconnected", http.StatusNotFound)
			return
		}
		fmt.Fprintf(w, "{\"sum\":%d,\"max\":%d,\"hops\":%d}\n", sum[0], mx[0], hops[0])
	})
	http.HandleFunc("/lca", func(w http.ResponseWriter, req *http.Request) {
		u, okU := arg(req, "u")
		v, okV := arg(req, "v")
		root, okR := arg(req, "r")
		if !okU || !okV || !okR {
			http.Error(w, fmt.Sprintf("u, v, r must be vertex ids in [0,%d)", s.n), http.StatusBadRequest)
			return
		}
		s.mu.RLock()
		l, ok := s.bq.BatchLCA([][3]int{{u, v, root}})
		s.mu.RUnlock()
		if !ok[0] {
			http.Error(w, "not in one tree", http.StatusNotFound)
			return
		}
		fmt.Fprintf(w, "{\"lca\":%d}\n", l[0])
	})
	http.HandleFunc("/stats", func(w http.ResponseWriter, req *http.Request) {
		s.mu.RLock()
		// Clone inside the lock: the cumulative view's Phases array is
		// mutated in place by the churn goroutine's Accumulate.
		out := struct {
			Workers    int                `json:"workers"`
			LastBatch  ufotree.PhaseStats `json:"last_batch"`
			Cumulative ufotree.PhaseStats `json:"cumulative"`
		}{s.f.Workers(), s.lastBatch, s.stats.Clone()}
		s.mu.RUnlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	})
	http.HandleFunc("/paths", func(w http.ResponseWriter, req *http.Request) {
		var pairs [][2]int
		if err := json.NewDecoder(req.Body).Decode(&pairs); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		for _, p := range pairs {
			if p[0] < 0 || p[0] >= s.n || p[1] < 0 || p[1] >= s.n {
				http.Error(w, fmt.Sprintf("pair %v out of range [0,%d)", p, s.n), http.StatusBadRequest)
				return
			}
		}
		sum, ok, mx, hops := s.answerPaths(pairs)
		type ans struct {
			Sum  int64 `json:"sum"`
			Max  int64 `json:"max"`
			Hops int   `json:"hops"`
			OK   bool  `json:"ok"`
		}
		out := make([]ans, len(pairs))
		for i := range pairs {
			out[i] = ans{sum[i], mx[i], hops[i], ok[i]}
		}
		json.NewEncoder(w).Encode(out)
	})
	log.Printf("pathserver listening on %s (n=%d)", *addr, *n)
	log.Fatal(http.ListenAndServe(*addr, nil))
}

// Path-query server: the read-heavy workload of the ROADMAP's north star.
//
// A fleet of agents (delivery drones, packets, players — anything routed
// over a tree) keeps asking "what is the cost/bottleneck/hop count between
// a and b right now?" while the tree itself churns under single link and
// cut requests arriving from many independent clients. This example serves
// that workload through ufotree.Batcher: nothing here pre-forms a batch
// and nothing takes a lock — every handler submits single operations, the
// Batcher coalesces them into engine-sized batches, sequences same-window
// conflicts across consecutive batches, and turns invalid requests into
// typed errors instead of engine panics.
//
// Two modes:
//
//	pathserver              # self-driving simulation: N concurrent clients
//	                        # churn and query through one Batcher, prints
//	                        # realized batch sizes + latency, exits
//	pathserver -addr :8080  # HTTP server:
//	                        #   GET  /link?u=3&v=9&w=4 -> {"seq":N} or typed error
//	                        #   GET  /cut?u=3&v=9      -> {"seq":N} or typed error
//	                        #   GET  /path?u=3&v=9     -> sum, max, hops
//	                        #   GET  /lca?u=3&v=9&r=0  -> lowest common ancestor
//	                        #   POST /paths            -> JSON [[u,v],...] batch
//	                        #   GET  /stats            -> ingest + engine telemetry
//	                        # churn keeps mutating the tree in the background
//
// /stats exposes both telemetry planes of the Batcher: the ingest side
// (queue depth and latency percentiles, realized mean batch size,
// rejection and conflict-deferral counts) and the engine side (per-phase
// PhaseStats accumulated over every batch), so operators can see where
// both queueing and write-side time go without profiling.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/gen"
	"repro/internal/rng"
)

// server owns the Batcher. There is no lock: the Batcher's flusher is the
// only goroutine that touches the forest, handlers just submit operations
// and wait for their results.
type server struct {
	b    *ufotree.Batcher
	bq   ufotree.BatchQuerier
	hops func(pairs [][2]int) ([]int, []bool) // UFO-only extension (see newServer)
	n    int
}

// newServer builds the initial topology directly (the Batcher is not open
// yet, so direct BatchLink is allowed and fast), then starts the Batcher
// that owns the forest from here on. workers <= 0 selects GOMAXPROCS.
func newServer(n, workers, batchSize int, maxWait time.Duration, seed uint64) *server {
	if workers < 0 {
		workers = 0
	}
	f := ufotree.New(n, ufotree.WithWorkers(workers))
	s := &server{bq: f.(ufotree.BatchQuerier), n: n}
	// Hop counts are a UFO-only extension (the facade's BatchQuerier has no
	// BatchPathHops — ternarized structures cannot answer it); resolve the
	// escape hatch once at startup so a future swap to another BatchForest
	// fails loudly here, not mid-request. It is only ever called inside
	// Batcher.Read, where the forest is quiescent.
	uf, ok := ufotree.UnderlyingUFO(f)
	if !ok {
		log.Fatalf("pathserver needs the UFO structure for hop counts; got %s", f.Name())
	}
	s.hops = uf.BatchPathHops
	topo := gen.WithRandomWeights(gen.PrefAttach(n, seed+1), 100, seed+2)
	edges := make([]ufotree.Edge, len(topo.Edges))
	for i, e := range topo.Edges {
		edges[i] = ufotree.Edge{U: e.U, V: e.V, W: e.W}
	}
	for lo := 0; lo < len(edges); lo += 10000 {
		hi := lo + 10000
		if hi > len(edges) {
			hi = len(edges)
		}
		f.BatchLink(edges[lo:hi])
	}
	s.b = ufotree.NewBatcher(f,
		ufotree.WithBatchSize(batchSize),
		ufotree.WithMaxWait(maxWait),
	)
	return s
}

// liveEdges returns the initial tree edges, the churn workers' starting
// inventory of cuttable edges.
func liveEdges(n int, seed uint64) [][2]int {
	topo := gen.PrefAttach(n, seed+1)
	out := make([][2]int, len(topo.Edges))
	for i, e := range topo.Edges {
		out[i] = [2]int{e.U, e.V}
	}
	return out
}

// answerPaths runs one query batch on the flusher via Read: the forest is
// quiescent there, so the three parallel batch-query fan-outs (sum, max,
// hops) run back to back against one consistent snapshot.
func (s *server) answerPaths(pairs [][2]int) (sum []int64, ok []bool, mx []int64, hops []int, err error) {
	err = s.b.Read(func() {
		sum, ok = s.bq.BatchPathSum(pairs)
		mx, _ = s.bq.BatchPathMax(pairs)
		hops, _ = s.hops(pairs)
	})
	return sum, ok, mx, hops, err
}

// rewire is one churn step over a privately-owned live-edge list: cut a
// random owned edge through the Batcher, then relink its endpoint
// somewhere else, treating admission's typed rejections (cycle, duplicate,
// self loop) as routine and retrying. Returns the updated list, the number
// of committed mutations, and whether an unexpected error occurred.
func rewire(b *ufotree.Batcher, live [][2]int, n int, r *rng.SplitMix64) ([][2]int, int, bool) {
	if len(live) == 0 {
		return live, 0, false
	}
	j := r.Intn(len(live))
	e := live[j]
	committed := 0
	if _, err := b.Cut(e[0], e[1]); err != nil {
		if errors.Is(err, ufotree.ErrAbsentCut) {
			// someone else (an HTTP client) cut our edge; just forget it
			live[j] = live[len(live)-1]
			return live[:len(live)-1], 0, false
		}
		return live, 0, true
	}
	committed++
	for try := 0; try < 8; try++ {
		v := r.Intn(n)
		_, err := b.Link(e[0], v, int64(1+r.Intn(100)))
		switch {
		case err == nil:
			live[j] = [2]int{e[0], v}
			return live, committed + 1, false
		case errors.Is(err, ufotree.ErrWouldCycle),
			errors.Is(err, ufotree.ErrDuplicateEdge),
			errors.Is(err, ufotree.ErrSelfLoop):
			// routine rejection: v landed in our own component or on an
			// existing edge; pick another target
		default:
			return live, committed, true
		}
	}
	// Every random target cycled (cutting a hub edge leaves the endpoint in
	// the giant component, where almost any target closes a cycle). Put the
	// original edge back; if even that cycles, a concurrent client already
	// reconnected the halves and the edge is simply gone.
	if _, err := b.Link(e[0], e[1], int64(1+r.Intn(100))); err == nil {
		return live, committed + 1, false
	}
	live[j] = live[len(live)-1]
	return live[:len(live)-1], committed, false
}

// simClient is one traffic source in simulation mode: churn rewires,
// pipelined same-edge conflict pairs (cut+relink of one edge submitted
// back to back, landing in one flush window and sequenced across batches),
// and batched path queries — all through the shared Batcher.
func simClient(s *server, live [][2]int, ops int, r *rng.SplitMix64, muts, queries, unexpected *atomic.Int64) {
	for i := 0; i < ops; i++ {
		switch {
		case i%8 == 3:
			pairs := make([][2]int, 8)
			for j := range pairs {
				pairs[j] = [2]int{r.Intn(s.n), r.Intn(s.n)}
			}
			if _, _, _, _, err := s.answerPaths(pairs); err != nil {
				unexpected.Add(1)
			}
			queries.Add(int64(len(pairs)))
		case i%8 == 6 && len(live) > 0:
			j := r.Intn(len(live))
			e := live[j]
			c1, e1 := s.b.CutAsync(e[0], e[1])
			c2, e2 := s.b.LinkAsync(e[0], e[1], int64(1+r.Intn(100)))
			if e1 != nil || e2 != nil {
				unexpected.Add(1)
				continue
			}
			r1, r2 := <-c1, <-c2
			if r1.Err != nil {
				unexpected.Add(1) // we own the edge; the cut must commit
			} else {
				muts.Add(1)
			}
			if r2.Err != nil {
				// a concurrent client reconnected the halves inside the
				// window gap: typed rejection, edge stays gone
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			} else {
				muts.Add(1)
			}
		default:
			var k int
			var bad bool
			live, k, bad = rewire(s.b, live, s.n, r)
			muts.Add(int64(k))
			if bad {
				unexpected.Add(1)
			}
		}
	}
}

// simulate is the self-driving mode: clients goroutines of single-op
// traffic through one Batcher, then a report of what the ingest layer
// achieved (coalescing, latency, conflict sequencing) and where the
// engine spent its time.
func simulate(n, workers, clients, ops, batchSize int, maxWait time.Duration) {
	s := newServer(n, workers, batchSize, maxWait, 11)
	defer s.b.Close()
	live := liveEdges(n, 11)
	if clients < 1 {
		clients = 1
	}
	per := len(live) / clients
	if per < 1 {
		clients = len(live)
		per = 1
	}
	fmt.Printf("pathserver simulation: n=%d clients=%d ops/client=%d batch-size=%d max-wait=%v\n",
		n, clients, ops, batchSize, maxWait)
	var muts, queries, unexpected atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			mine := make([][2]int, per)
			copy(mine, live[c*per:(c+1)*per])
			simClient(s, mine, ops, rng.New(uint64(100+c)), &muts, &queries, &unexpected)
		}(c)
	}
	wg.Wait()
	secs := time.Since(start).Seconds()

	// One sample batch so the output means something.
	pairs := [][2]int{{0, n / 2}, {1, n / 3}, {2, n - 1}}
	sum, ok, mx, hops, err := s.answerPaths(pairs)
	if err == nil {
		for i := range pairs {
			if ok[i] {
				fmt.Printf("  sample: route %d->%d cost=%d bottleneck=%d hops=%d\n",
					pairs[i][0], pairs[i][1], sum[i], mx[i], hops[i])
				break
			}
		}
	}

	st := s.b.Stats()
	fmt.Printf("committed %d mutations and %d path queries in %.3fs (%.0f ops/s end to end)\n",
		muts.Load(), queries.Load(), secs, float64(muts.Load()+queries.Load())/secs)
	fmt.Printf("ingest: mean batch %.1f muts/engine-batch over %d batches, %d conflicts sequenced, %d typed rejections\n",
		st.Ingest.MeanBatch, st.Ingest.Batches, st.Ingest.Deferred, st.Ingest.Rejected)
	fmt.Printf("ingest: latency p50=%.2fms p99=%.2fms, queue depth p99=%.0f, engine panics=%d, unexpected errors=%d\n",
		st.Ingest.LatencyNs.P50/1e6, st.Ingest.LatencyNs.P99/1e6, st.Ingest.QueueDepth.P99,
		st.Ingest.EnginePanics, unexpected.Load())
	fmt.Printf("update engine: %d batches, %d links + %d cuts over %d contraction rounds in %v\n",
		st.Engine.Batches, st.Engine.Links, st.Engine.Cuts, st.Engine.Levels, st.Engine.Total.Round(time.Microsecond))
	for _, ph := range st.Engine.Phases {
		if ph.Items == 0 && ph.Time == 0 {
			continue
		}
		share := 0.0
		if st.Engine.Total > 0 {
			share = 100 * float64(ph.Time) / float64(st.Engine.Total)
		}
		fmt.Printf("  %-13s %8.1f%%  %9v  %9d items\n", ph.Name, share, ph.Time.Round(time.Microsecond), ph.Items)
	}
}

// errStatus maps an admission error to an HTTP status and a stable
// machine-readable code for the JSON error body.
func errStatus(err error) (int, string) {
	switch {
	case errors.Is(err, ufotree.ErrVertexRange):
		return http.StatusBadRequest, "vertex_range"
	case errors.Is(err, ufotree.ErrSelfLoop):
		return http.StatusBadRequest, "self_loop"
	case errors.Is(err, ufotree.ErrDuplicateEdge):
		return http.StatusConflict, "duplicate_edge"
	case errors.Is(err, ufotree.ErrWouldCycle):
		return http.StatusConflict, "would_cycle"
	case errors.Is(err, ufotree.ErrAbsentCut):
		return http.StatusNotFound, "absent_cut"
	case errors.Is(err, ufotree.ErrClosed):
		return http.StatusServiceUnavailable, "closed"
	default:
		return http.StatusInternalServerError, "engine"
	}
}

func writeJSONErr(w http.ResponseWriter, err error) {
	status, code := errStatus(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error(), "code": code})
}

func main() {
	var (
		addr      = flag.String("addr", "", "listen address; empty runs the self-driving simulation")
		n         = flag.Int("n", 50000, "vertices")
		workers   = flag.Int("workers", 0, "batch worker count (0 = GOMAXPROCS)")
		clients   = flag.Int("clients", 64, "concurrent traffic sources (simulation mode)")
		ops       = flag.Int("ops", 400, "operations per client (simulation mode)")
		batchSize = flag.Int("batchsize", 1024, "Batcher flush trigger: pending ops")
		maxWait   = flag.Duration("maxwait", 2*time.Millisecond, "Batcher flush trigger: latency bound")
	)
	flag.Parse()

	if *addr == "" {
		simulate(*n, *workers, *clients, *ops, *batchSize, *maxWait)
		return
	}

	s := newServer(*n, *workers, *batchSize, *maxWait, 11)
	// Background churn: one goroutine rewiring through the Batcher, exactly
	// like any other client. Typed rejections (including an HTTP client
	// cutting an edge first) are routine, not faults.
	go func() {
		live := liveEdges(*n, 11)
		r := rng.New(7)
		for {
			var bad bool
			live, _, bad = rewire(s.b, live, s.n, r)
			if bad {
				log.Printf("churn: unexpected error, backing off")
				time.Sleep(time.Second)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	arg := func(req *http.Request, k string) (int, bool) {
		v, err := strconv.Atoi(req.URL.Query().Get(k))
		return v, err == nil
	}
	http.HandleFunc("/link", func(w http.ResponseWriter, req *http.Request) {
		u, okU := arg(req, "u")
		v, okV := arg(req, "v")
		if !okU || !okV {
			http.Error(w, "u and v must be vertex ids", http.StatusBadRequest)
			return
		}
		wt := int64(1)
		if x, ok := arg(req, "w"); ok {
			wt = int64(x)
		}
		// Admission turns every invalid request into a typed error — a
		// duplicate edge, a cycle-closing link, an out-of-range vertex all
		// come back as JSON, never as an engine panic.
		res, err := s.b.Link(u, v, wt)
		if err != nil {
			writeJSONErr(w, err)
			return
		}
		fmt.Fprintf(w, "{\"seq\":%d}\n", res.Seq)
	})
	http.HandleFunc("/cut", func(w http.ResponseWriter, req *http.Request) {
		u, okU := arg(req, "u")
		v, okV := arg(req, "v")
		if !okU || !okV {
			http.Error(w, "u and v must be vertex ids", http.StatusBadRequest)
			return
		}
		res, err := s.b.Cut(u, v)
		if err != nil {
			writeJSONErr(w, err)
			return
		}
		fmt.Fprintf(w, "{\"seq\":%d}\n", res.Seq)
	})
	http.HandleFunc("/path", func(w http.ResponseWriter, req *http.Request) {
		u, okU := arg(req, "u")
		v, okV := arg(req, "v")
		if !okU || !okV || u < 0 || u >= s.n || v < 0 || v >= s.n {
			http.Error(w, fmt.Sprintf("u and v must be vertex ids in [0,%d)", s.n), http.StatusBadRequest)
			return
		}
		sum, ok, mx, hops, err := s.answerPaths([][2]int{{u, v}})
		if err != nil {
			writeJSONErr(w, err)
			return
		}
		if !ok[0] {
			http.Error(w, "disconnected", http.StatusNotFound)
			return
		}
		fmt.Fprintf(w, "{\"sum\":%d,\"max\":%d,\"hops\":%d}\n", sum[0], mx[0], hops[0])
	})
	http.HandleFunc("/lca", func(w http.ResponseWriter, req *http.Request) {
		u, okU := arg(req, "u")
		v, okV := arg(req, "v")
		root, okR := arg(req, "r")
		if !okU || !okV || !okR || u < 0 || u >= s.n || v < 0 || v >= s.n || root < 0 || root >= s.n {
			http.Error(w, fmt.Sprintf("u, v, r must be vertex ids in [0,%d)", s.n), http.StatusBadRequest)
			return
		}
		var l []int
		var ok []bool
		err := s.b.Read(func() { l, ok = s.bq.BatchLCA([][3]int{{u, v, root}}) })
		if err != nil {
			writeJSONErr(w, err)
			return
		}
		if !ok[0] {
			http.Error(w, "not in one tree", http.StatusNotFound)
			return
		}
		fmt.Fprintf(w, "{\"lca\":%d}\n", l[0])
	})
	http.HandleFunc("/stats", func(w http.ResponseWriter, req *http.Request) {
		// Both telemetry planes in one snapshot: ingest (queueing,
		// coalescing, admission) and engine (phase attribution).
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.b.Stats())
	})
	http.HandleFunc("/paths", func(w http.ResponseWriter, req *http.Request) {
		var pairs [][2]int
		if err := json.NewDecoder(req.Body).Decode(&pairs); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		for _, p := range pairs {
			if p[0] < 0 || p[0] >= s.n || p[1] < 0 || p[1] >= s.n {
				http.Error(w, fmt.Sprintf("pair %v out of range [0,%d)", p, s.n), http.StatusBadRequest)
				return
			}
		}
		sum, ok, mx, hops, err := s.answerPaths(pairs)
		if err != nil {
			writeJSONErr(w, err)
			return
		}
		type ans struct {
			Sum  int64 `json:"sum"`
			Max  int64 `json:"max"`
			Hops int   `json:"hops"`
			OK   bool  `json:"ok"`
		}
		out := make([]ans, len(pairs))
		for i := range pairs {
			out[i] = ans{sum[i], mx[i], hops[i], ok[i]}
		}
		json.NewEncoder(w).Encode(out)
	})
	log.Printf("pathserver listening on %s (n=%d)", *addr, *n)
	log.Fatal(http.ListenAndServe(*addr, nil))
}

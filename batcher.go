package ufotree

import (
	"sync"
	"time"

	"repro/internal/serve"
)

// Batcher is the auto-batching ingest front-end over a BatchForest: any
// number of goroutines submit single link / cut / query operations; a
// flusher goroutine coalesces them into engine-sized batches (flushing at
// batchSize pending operations or maxWait after the first, whichever
// comes first), validates each window through admission control, runs the
// mutations as engine batches at the forest's configured worker count,
// and fans every result back to its caller.
//
// Admission control replaces the pre-mutation panic contract with typed
// errors: operations that are invalid at their serialization point come
// back as ErrSelfLoop / ErrDuplicateEdge / ErrAbsentCut / ErrWouldCycle /
// ErrVertexRange, and operations that merely conflict inside one flush
// window — a cut and a link of the same edge, a link into a component
// with a pending cut — are sequenced across consecutive engine batches
// instead of erroring. No engine panic ever reaches a submitter. Same-edge
// operations commit in arrival order; the commit order across edges is
// the Seq order in the results (and the journal, with WithJournal).
//
// The flusher is the only goroutine touching the forest, so the engine's
// batch-query concurrency contract holds by construction — but for the
// same reason the forest must not be used directly while a Batcher is
// open; use Read for serialized access to extended APIs.
type Batcher struct {
	b *serve.Batcher
	f BatchForest

	mu  sync.Mutex
	eng PhaseStats // engine telemetry accumulated across all batches
}

// BatcherOption configures a Batcher; see NewBatcher.
type BatcherOption = serve.Option

// WithBatchSize sets the flush trigger: a window flushes as soon as n
// operations are pending (default serve.DefaultBatchSize).
func WithBatchSize(n int) BatcherOption { return serve.WithBatchSize(n) }

// WithMaxWait bounds latency: a window flushes at most d after its first
// operation arrived, full or not (default serve.DefaultMaxWait).
func WithMaxWait(d time.Duration) BatcherOption { return serve.WithMaxWait(d) }

// WithQueueCap sets the submission buffer (default 4 x batch size);
// submitters block when it fills — backpressure against a saturated
// flusher.
func WithQueueCap(n int) BatcherOption { return serve.WithQueueCap(n) }

// WithJournal records every committed mutation in commit order for
// Batcher.Journal — the replay oracle for tests and a replication feed
// for servers. Off by default (the journal grows without bound).
func WithJournal() BatcherOption { return serve.WithJournal() }

// OpResult is the outcome of one submitted operation (alias of the serve
// layer's Result so the *Async forms interoperate): Err, the commit Seq of
// a mutation, the query answer (Bool or Val/OK), and the flat Timing
// trail (enqueue / flush / build / respond offsets).
type OpResult = serve.Result

// OpTiming is one request's ingest timestamp trail: monotonic offsets
// from the Batcher's start for enqueue, flush, engine build, and respond.
type OpTiming = serve.Timing

// IngestStats is the Batcher's ingest telemetry snapshot: flat counters
// (submitted, committed links/cuts, queries, rejections, deferrals,
// windows, engine sub-batches, recovered panics), realized mean batch and
// window sizes, and percentile summaries of queue depth and per-request
// latency stages.
type IngestStats = serve.Stats

// AppliedOp is one committed mutation in a Batcher's journal.
type AppliedOp = serve.AppliedOp

// BatcherStats pairs the ingest-side telemetry with the engine-side
// telemetry accumulated over every batch the Batcher has run.
type BatcherStats struct {
	Ingest IngestStats `json:"ingest"`
	Engine PhaseStats  `json:"engine"`
	// Queries is the batch-query engine telemetry (zero unless the forest
	// implements QueryEngine): every flush window's read fan-out —
	// connectivity and path queries alike — is answered as one engine
	// batch, so the walk-mode split of the serve traffic shows up here.
	Queries QueryStats `json:"queries"`
}

// NewBatcher starts a Batcher over f, which must not be mutated or
// queried directly (except through Read) until Close. Batch sizing comes
// from opts; the engine worker count is whatever f is configured with
// (e.g. New(n, WithWorkers(k))). Path queries are enabled when f is a
// BatchQuerier, and admission's cycle detection uses f's ComponentIDer
// fast path when present (the UFO forest), falling back to connectivity
// probes otherwise.
func NewBatcher(f BatchForest, opts ...BatcherOption) *Batcher {
	b := &Batcher{f: f}
	all := make([]serve.Option, 0, len(opts)+3)
	all = append(all, opts...)
	all = append(all, serve.WithAfterBatch(func() {
		s := f.PhaseStats()
		b.mu.Lock()
		b.eng.Accumulate(s)
		b.mu.Unlock()
	}))
	if c, ok := f.(ComponentIDer); ok {
		all = append(all, serve.WithComponentID(c.ComponentID))
	}
	if q, ok := f.(BatchQuerier); ok {
		all = append(all, serve.WithPathQueries(q.BatchPathSum, q.BatchPathMax))
	}
	b.b = serve.New(engineShim{f}, all...)
	return b
}

// Link inserts edge (u,v,w), blocking until its flush window commits; the
// result carries the commit sequence number.
func (b *Batcher) Link(u, v int, w int64) (OpResult, error) { return b.b.Link(u, v, w) }

// Cut removes edge (u,v), blocking until its flush window commits.
func (b *Batcher) Cut(u, v int) (OpResult, error) { return b.b.Cut(u, v) }

// Connected reports whether u and v are connected, serialized after the
// mutations of its flush window.
func (b *Batcher) Connected(u, v int) (bool, error) { return b.b.Connected(u, v) }

// PathSum returns the sum of edge weights on the u..v path (ok false when
// disconnected); ErrUnsupported when f is not a BatchQuerier.
func (b *Batcher) PathSum(u, v int) (int64, bool, error) { return b.b.PathSum(u, v) }

// PathMax returns the maximum edge weight on the u..v path (ok false when
// disconnected or u == v); ErrUnsupported when f is not a BatchQuerier.
func (b *Batcher) PathMax(u, v int) (int64, bool, error) { return b.b.PathMax(u, v) }

// LinkAsync submits a link without waiting; the buffered channel receives
// the OpResult when the window commits. One goroutine's submission order
// is its arrival order, so dependent same-edge operations (cut then
// relink) can be pipelined and are sequenced correctly.
func (b *Batcher) LinkAsync(u, v int, w int64) (<-chan OpResult, error) {
	return b.b.LinkAsync(u, v, w)
}

// CutAsync submits a cut without waiting; see LinkAsync.
func (b *Batcher) CutAsync(u, v int) (<-chan OpResult, error) { return b.b.CutAsync(u, v) }

// ConnectedAsync submits a connectivity query without waiting.
func (b *Batcher) ConnectedAsync(u, v int) (<-chan OpResult, error) {
	return b.b.ConnectedAsync(u, v)
}

// Read runs fn on the flusher goroutine, serialized after the mutations
// of its flush window — the sanctioned way to reach extended engine APIs
// (UnderlyingUFO, batch queries) while a Batcher owns the forest. fn must
// not submit to the same Batcher and should be short: it blocks ingest.
func (b *Batcher) Read(fn func()) error { return b.b.Read(fn) }

// Close stops accepting submissions, flushes everything enqueued, and
// waits for the flusher to exit; afterwards the forest is safe to use
// directly again. Idempotent; racing submissions get ErrClosed.
func (b *Batcher) Close() { b.b.Close() }

// Stats snapshots both telemetry planes: ingest-side (queue depth and
// latency percentiles, realized batch sizes, rejection/deferral counts)
// and engine-side (PhaseStats accumulated over every batch this Batcher
// has run — forest-vocabulary phases only, safe to Accumulate further).
func (b *Batcher) Stats() BatcherStats {
	ing := b.b.Stats()
	b.mu.Lock()
	eng := b.eng.Clone()
	b.mu.Unlock()
	st := BatcherStats{Ingest: ing, Engine: eng}
	if qe, ok := b.f.(QueryEngine); ok {
		st.Queries = qe.QueryStats() // atomic counters: safe beside the flusher
	}
	return st
}

// Journal returns a copy of the committed-mutation journal in commit
// order (empty unless WithJournal): the authoritative serialization, fit
// for a sequential replay oracle.
func (b *Batcher) Journal() []AppliedOp { return b.b.Journal() }

// engineShim adapts a facade BatchForest to the serve layer's Engine,
// converting edge types at the boundary.
type engineShim struct{ f BatchForest }

func (s engineShim) N() int                  { return s.f.N() }
func (s engineShim) HasEdge(u, v int) bool   { return s.f.HasEdge(u, v) }
func (s engineShim) Connected(u, v int) bool { return s.f.Connected(u, v) }

func (s engineShim) BatchLink(edges []serve.Edge) { s.f.BatchLink(convFacadeEdges(edges)) }
func (s engineShim) BatchCut(edges []serve.Edge)  { s.f.BatchCut(convFacadeEdges(edges)) }

func (s engineShim) BatchConnected(pairs [][2]int) []bool {
	if q, ok := s.f.(BatchConnectivityQuerier); ok {
		return q.BatchConnected(pairs)
	}
	out := make([]bool, len(pairs))
	for i, p := range pairs {
		out[i] = s.f.Connected(p[0], p[1])
	}
	return out
}

func convFacadeEdges(edges []serve.Edge) []Edge {
	out := make([]Edge, len(edges))
	for i, e := range edges {
		out[i] = Edge{U: e.U, V: e.V, W: e.W}
	}
	return out
}

var _ serve.Engine = engineShim{}
